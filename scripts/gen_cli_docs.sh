#!/bin/sh
# Regenerates the README "CLI reference" section from the binaries' own
# -help-md output, so the documented flag tables cannot drift from the
# code. Usage:
#
#   scripts/gen_cli_docs.sh          # rewrite README.md in place
#   scripts/gen_cli_docs.sh -check   # exit 1 if README.md is stale (CI)
#
# The section is delimited by the markers
#   <!-- cli-reference:begin --> ... <!-- cli-reference:end -->
set -eu
cd "$(dirname "$0")/.."

tables=$(mktemp)
trap 'rm -f "$tables" "$tables.md"' EXIT
for cmd in rramft-train rramft-detect rramft-bench rramft-serve; do
    go run "./cmd/$cmd" -help-md >>"$tables"
    printf '\n' >>"$tables"
done

awk -v tables="$tables" '
    /<!-- cli-reference:begin -->/ {
        print
        while ((getline line < tables) > 0) print line
        close(tables)
        skipping = 1
    }
    /<!-- cli-reference:end -->/ { skipping = 0 }
    !skipping { print }
' README.md >"$tables.md"

if [ "${1:-}" = "-check" ]; then
    if ! cmp -s "$tables.md" README.md; then
        echo "gen_cli_docs: README.md CLI reference is stale; run scripts/gen_cli_docs.sh" >&2
        diff -u README.md "$tables.md" >&2 || true
        exit 1
    fi
    echo "gen_cli_docs: README.md CLI reference is up to date"
else
    mv "$tables.md" README.md
    echo "gen_cli_docs: README.md CLI reference regenerated"
fi
