//go:build ignore

// Generator for the checked-in fuzz seed corpora under
// internal/*/testdata/fuzz/. Re-run from the repository root whenever a
// snapshot or checkpoint format changes:
//
//	go run scripts/gen_fuzz_corpus.go
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"rramft/internal/core"
	"rramft/internal/dataset"
	"rramft/internal/fault"
	"rramft/internal/mapping"
	"rramft/internal/rram"
	"rramft/internal/tensor"
	"rramft/internal/xrand"
)

func writeEntry(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("%s/%s: %d bytes\n", dir, name, len(data))
}

func gobBytes(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func main() {
	// rram: FuzzCrossbarRestore — must match fuzzCrossbar in fuzz_test.go.
	cfg := rram.Config{Levels: 8, WriteStd: 0.1, Endurance: fault.Unlimited()}
	cb := rram.New(3, 4, cfg, xrand.New(5))
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			cb.Write(r, c, float64((r+c)%8))
		}
	}
	cb.SetFault(1, 2, fault.SA0)
	cb.SetFault(2, 0, fault.SA1)
	st := cb.Snapshot()
	dir := "internal/rram/testdata/fuzz/FuzzCrossbarRestore"
	valid := gobBytes(st)
	writeEntry(dir, "valid-snapshot", valid)
	writeEntry(dir, "truncated", valid[:len(valid)/2])
	st.Version = 99
	writeEntry(dir, "bad-version", gobBytes(st))
	st.Version = rram.StateVersion
	st.Level = st.Level[:3]
	writeEntry(dir, "short-arrays", gobBytes(st))

	// mapping: FuzzMappingState — must match fuzzStore in fuzz_test.go.
	w := tensor.NewDense(3, 4)
	for i := range w.Data {
		w.Data[i] = float64(i%5) - 2
	}
	scfg := mapping.StoreConfig{Crossbar: rram.Config{Levels: 8, WriteStd: 0.1, Endurance: fault.Unlimited()}}
	store := mapping.NewCrossbarStore("fz", w, scfg, xrand.New(5))
	sst := store.Snapshot()
	dir = "internal/mapping/testdata/fuzz/FuzzMappingState"
	writeEntry(dir, "valid-snapshot", gobBytes(sst))
	sst.RowPerm[0] = 99
	writeEntry(dir, "corrupt-rowperm", gobBytes(sst))
	sst.RowPerm[0] = 0
	sst.ColPerm[1] = sst.ColPerm[0]
	writeEntry(dir, "duplicate-colperm", gobBytes(sst))
	sst = store.Snapshot()
	sst.Crossbar = nil
	writeEntry(dir, "nil-crossbar", gobBytes(sst))
	sst = store.Snapshot()
	sst.WMax = 0
	writeEntry(dir, "zero-wmax", gobBytes(sst))

	// core: FuzzReadCheckpoint — a real checkpoint of the fuzz session
	// shape (fuzzData/fuzzModel/fuzzTrainConfig in fuzz_test.go) plus
	// header corruptions.
	dcfg := dataset.MNISTLike(3)
	dcfg.TrainN = 12
	dcfg.TestN = 4
	ds := dataset.Generate(dcfg)
	opts := core.DefaultBuildOptions(3)
	opts.OnRCS = true
	opts.Store = mapping.StoreConfig{Crossbar: rram.Config{Levels: 8, WriteStd: 0.05, Endurance: fault.Unlimited()}}
	m := core.BuildMLP(ds.InSize(), []int{4}, 10, opts)
	tcfg := core.DefaultTrainConfig(3, 6)
	tcfg.BatchSize = 4
	tcfg.CheckpointEvery = 2
	tmp, err := os.MkdirTemp("", "rramft-corpus")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)
	ckPath := filepath.Join(tmp, "ck")
	tcfg.CheckpointPath = ckPath
	core.Train(m, ds, tcfg)
	ckBytes, err := os.ReadFile(ckPath)
	if err != nil {
		panic(err)
	}
	dir = "internal/core/testdata/fuzz/FuzzReadCheckpoint"
	writeEntry(dir, "valid-checkpoint", ckBytes)
	writeEntry(dir, "magic-only", []byte("RRAMFTCK"))
	writeEntry(dir, "bad-magic", append([]byte("NOTRIGHT"), ckBytes[8:]...))
	badVer := append([]byte(nil), ckBytes...)
	badVer[8] = 0xFF
	writeEntry(dir, "bad-version", badVer)
	writeEntry(dir, "truncated-gob", ckBytes[:len(ckBytes)/3])

	// detect: FuzzMarchInput — interesting byte patterns (dimensions,
	// levels, fault kinds are all derived from the bytes).
	dir = "internal/detect/testdata/fuzz/FuzzMarchInput"
	writeEntry(dir, "empty", []byte{})
	writeEntry(dir, "single-cell", []byte{0, 0, 0, 1, 2})
	writeEntry(dir, "dense-faults", []byte{7, 7, 3, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2})
	writeEntry(dir, "max-bytes", bytes.Repeat([]byte{255}, 32))
	writeEntry(dir, "mixed", []byte{3, 4, 7, 1, 0, 2, 5, 0, 1, 3, 3, 0, 6, 2, 9, 8, 1})
}
