#!/usr/bin/env bash
# Regenerate the golden regression files under internal/*/testdata/golden/.
#
# Run this after an *intentional* behavior change (new RNG derivation, a
# different update rule, a detector fix, ...), then review the JSON diff
# like code: every changed number is a behavior change you are signing off
# on. The golden gates themselves run in the normal `go test ./...` pass.
set -euo pipefail
cd "$(dirname "$0")/.."

RRAMFT_UPDATE_GOLDEN=1 go test ./internal/core/ ./internal/detect/ ./internal/cluster/ ./internal/serve/ -run 'Golden' -count=1 "$@"

echo
echo "golden files now:"
git status --short -- '*testdata/golden*' || true
